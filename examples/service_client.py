"""Quickstart: reproduction as a service, end to end.

Starts the HTTP service in-process (the same server ``python -m repro
serve`` runs), then walks the full client workflow against it:

1. submit the paper's running example (``fig1``) as a job;
2. poll until it completes, printing each pipeline stage's wall clock
   as the service streams it;
3. fetch the completed report document — byte-identical to what the
   batch driver (``run_many``) would have produced;
4. resubmit the identical scenario and watch the service deduplicate
   it (same canonical job, nothing re-runs);
5. query the persistent report store by scenario and by failure
   signature.

The HTTP API reference is ``docs/api.md``; the report document format
is ``docs/report-schema.md``.

Run:  PYTHONPATH=src python examples/service_client.py
"""

import json
import tempfile

from repro.service import JobManager, ServiceClient, ServiceThread


def main():
    store_root = tempfile.mkdtemp(prefix="repro-reports-")
    manager = JobManager(workers=1, stress_seed_stop=8000,
                         store=store_root)

    # ServiceThread hosts the asyncio server on a background thread so
    # synchronous code can drive it; `python -m repro serve` runs the
    # same server in the foreground instead.
    with ServiceThread(manager) as handle:
        base_url = "http://127.0.0.1:%d" % handle.port
        client = ServiceClient(base_url)
        print("service up at %s" % base_url)
        print("registered scenarios: %d" % len(client.scenarios()))

        print("\n[1] submitting fig1 ...")
        doc = client.submit("fig1")
        print("    job %s accepted (state: %s)"
              % (doc["job_id"], doc["state"]))

        print("\n[2] streaming per-stage progress ...")
        final = client.wait(
            doc["job_id"], timeout_s=120,
            on_stage=lambda e: print("    stage %-8s %.3fs"
                                     % (e["stage"], e["wall_s"])))
        print("    job finished: %s" % final["state"])

        print("\n[3] fetching the report document ...")
        report = json.loads(client.report(doc["job_id"]))
        print("    schema %s, bug %s" % (report["schema"], report["bug"]))
        for strategy, outcome in report["searches"].items():
            print("    %-16s reproduced=%s tries=%d"
                  % (strategy, outcome["reproduced"], outcome["tries"]))

        print("\n[4] resubmitting the identical scenario ...")
        again = client.submit("fig1")
        assert again["deduped"] and again["job_id"] == doc["job_id"]
        print("    deduplicated to job %s (submissions: %d) — "
              "the pipeline never re-ran"
              % (again["job_id"], again["submissions"]))

        print("\n[5] querying the report store ...")
        for entry in client.reports(scenario="fig1"):
            print("    job %s  signature %s  reproduced=%s"
                  % (entry["job_id"], entry["signature"],
                     entry["reproduced"]))
        print("\nreports persisted under %s" % store_root)


if __name__ == "__main__":
    main()
