"""Fail on dead relative links in the repo's markdown documentation.

Checks every ``[text](target)`` in the given markdown files (default:
``README.md`` and ``docs/*.md``) whose target is a *relative path* —
external URLs and mailto links are out of scope — and exits nonzero if
any target does not exist relative to the file that links it.
Fragment-only links (``#section``) and fragments on existing files
(``architecture.md#subsystems``) are accepted; anchors themselves are
not verified.

Run:  python tools/check_links.py [files...]
"""

import glob
import os
import re
import sys

#: inline markdown links; images share the syntax via a leading ``!``
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _targets(text):
    for match in _LINK.finditer(text):
        yield match.group(1)


def check_file(path):
    """Dead relative link targets of one markdown file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    base = os.path.dirname(os.path.abspath(path))
    dead = []
    for target in _targets(text):
        if target.startswith(_EXTERNAL):
            continue
        if target.startswith("#"):
            continue  # intra-document anchor
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not os.path.exists(os.path.join(base, relative)):
            dead.append(target)
    return dead


def main(argv=None):
    paths = list(argv or [])
    if not paths:
        paths = ["README.md"] + sorted(glob.glob("docs/*.md"))
    missing_files = [path for path in paths if not os.path.exists(path)]
    if missing_files:
        print("no such file: %s" % ", ".join(missing_files))
        return 2
    failures = 0
    for path in paths:
        for target in check_file(path):
            print("%s: dead link -> %s" % (path, target))
            failures += 1
    if failures:
        print("%d dead link(s) across %d file(s)" % (failures, len(paths)))
        return 1
    print("all relative links resolve (%d file(s) checked)" % len(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
